(** Unsafe C string/memory routines over simulated memory.

    These are the ordinary, unchecked library functions ([strcpy],
    [strncpy], [memcpy], …): they trust their arguments completely, so a
    too-small destination is overflowed exactly as in C.  DieHard's
    bounded replacements live in {!Diehard.Shim} (paper §4.4); keeping the
    unsafe versions here lets experiments toggle the replacement on and
    off (the §7.1 runs disable it to isolate randomization's protection). *)

val strlen : Dh_mem.Mem.t -> int -> int
(** Length of the NUL-terminated string at the address. *)

val strcpy : Dh_mem.Mem.t -> dst:int -> src:int -> unit
(** Copy including the terminating NUL.  No bounds checking. *)

val strncpy : Dh_mem.Mem.t -> dst:int -> src:int -> n:int -> unit
(** Copy at most [n] bytes, NUL-padding as C does.  Trusts [n]. *)

val strcmp : Dh_mem.Mem.t -> int -> int -> int

val memcpy : Dh_mem.Mem.t -> dst:int -> src:int -> n:int -> unit

val memset : Dh_mem.Mem.t -> dst:int -> c:int -> n:int -> unit

val write_string : Dh_mem.Mem.t -> addr:int -> string -> unit
(** Store an OCaml string plus terminating NUL at [addr]. *)
