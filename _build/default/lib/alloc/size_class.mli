(** DieHard's power-of-two size classes (paper §4.1).

    The heap is logically partitioned into twelve regions, one per
    power-of-two size class from 8 bytes to 16 kilobytes.  Requests are
    rounded up to the nearest power of two; the class index of a request of
    [sz] bytes is [ceil(log2 sz) - 3], clamped below at 0.  Powers of two
    let division and modulus be replaced with shifts — we reproduce that
    arithmetic (and test that the shift forms agree with the naive forms). *)

val count : int
(** 12 classes. *)

val min_size : int
(** 8 bytes (class 0). *)

val max_size : int
(** 16384 bytes (class 11).  Larger requests go to the large-object path. *)

val size : int -> int
(** [size c] is the object size of class [c] ([8 lsl c]).  Requires
    [0 <= c < count]. *)

val log2_size : int -> int
(** [log2_size c = 3 + c], the shift amount for class [c]'s size. *)

val of_size : int -> int option
(** [of_size sz] is the class serving a request of [sz] bytes, or [None]
    when [sz > max_size] (large object) or [sz <= 0]. *)

val of_size_exn : int -> int

val round_up : int -> int
(** [round_up sz] is the rounded (reserved) size for a small request:
    [size (of_size_exn sz)]. *)

val is_aligned : offset:int -> class_:int -> bool
(** [is_aligned ~offset ~class_] tells whether a byte offset within a
    partition is a multiple of the class's object size — the validity check
    DieHard's [free] applies (§4.3), computed with masks rather than
    modulus. *)
