(** The common allocator interface.

    Every memory manager in this repository — DieHard itself, the
    freelist baseline, the conservative GC, and the wrappers (tracing,
    fault injection) — is packaged as a first-class value of this record
    type, so that applications ({!Dh_lang} programs, the synthetic
    workloads, the replicated runtime) are written once and run unchanged
    against any of them, mirroring the paper's [LD_PRELOAD]
    interposition. *)

type object_info = {
  base : int;  (** Start address of the object's slot. *)
  size : int;  (** Reserved size of the slot in bytes. *)
  allocated : bool;  (** Whether the slot currently holds a live object. *)
}

type t = {
  name : string;
  mem : Dh_mem.Mem.t;
  malloc : int -> int option;
      (** [malloc sz] returns the address of a fresh object of at least
          [sz] bytes, or [None] when the heap is exhausted (NULL). *)
  free : int -> unit;
      (** Dispose of an object.  Semantics on invalid input are the
          allocator's own: DieHard ignores, the freelist baseline exhibits
          undefined behaviour, the GC treats every free as a no-op. *)
  find_object : int -> object_info option;
      (** Classify an address: the slot containing it, if the address lies
          in this allocator's heap.  Used by access policies ({!Policy})
          and by white-box tests. *)
  owns : int -> bool;
      (** Whether the address lies anywhere in this allocator's heap area
          (live or free).  Cheaper than [find_object]. *)
  register_roots : ((unit -> int list) -> unit) option;
      (** For garbage-collected allocators only: register a provider of
          root words.  Applications that keep pointers outside the heap
          (interpreter environments, workload tables) must register them
          or the collector will reclaim their objects. *)
  stats : Stats.t;
}

val null : int
(** The NULL address (0, never mapped by {!Dh_mem.Mem}). *)

val malloc_exn : t -> int -> int
(** [malloc] that raises [Failure] on heap exhaustion — convenience for
    tests and workloads that treat OOM as a harness error. *)

val calloc : t -> int -> int option
(** [calloc t sz]: malloc then zero-fill. *)

val realloc : t -> int -> int -> int option
(** [realloc t ptr sz] with C semantics: [realloc t null sz] is
    [malloc sz]; [realloc t ptr 0] frees and returns NULL; otherwise a
    new object is allocated, [min old_usable sz] bytes are copied, and
    the old object is freed.  The old usable size comes from
    [find_object]; a [ptr] the allocator does not recognise behaves like
    C's undefined [realloc] of a foreign pointer — the copy is skipped
    and the pointer is passed to [free] (whose behaviour is the
    allocator's own). *)
