(** Rx-style "rescue mode" allocator wrapper.

    Rx (Qin et al., SOSP 2005 — discussed in the paper's related work)
    recovers from crashes by rolling back and re-executing with an
    allocator that "selectively ignores double frees, zero-fills buffers,
    pads object requests, and defers frees".  This wrapper implements
    that rescue allocator; the re-execution part is the caller's job
    (run the program once normally; on a crash, run it again from the
    start on a fresh heap wrapped in [rescue] — an exact rollback, since
    our programs are deterministic).

    Used by the Table 1 benchmark to reproduce the Rx column. *)

val wrap :
  ?pad:int ->
  ?defer_frees:bool ->
  ?zero_fill:bool ->
  Allocator.t ->
  Allocator.t
(** Defaults: pad every request by 64 bytes, ignore all frees, zero-fill
    allocations. *)
