let check_replicas k =
  if k < 1 then invalid_arg "Theorems: replicas must be >= 1";
  if k = 2 then invalid_arg "Theorems: k = 2 is excluded (voter cannot break ties)"

let overflow_mask_probability ~free_fraction ~objects ~replicas =
  check_replicas replicas;
  if objects < 0 then invalid_arg "Theorems: objects must be >= 0";
  if free_fraction < 0. || free_fraction > 1. then
    invalid_arg "Theorems: free_fraction out of [0,1]";
  let miss_one = Float.pow free_fraction (float_of_int objects) in
  1. -. Float.pow (1. -. miss_one) (float_of_int replicas)

let dangling_mask_probability ~allocations ~free_slots ~replicas =
  check_replicas replicas;
  if allocations < 0 then invalid_arg "Theorems: allocations must be >= 0";
  if free_slots <= 0 then invalid_arg "Theorems: free_slots must be positive";
  let ratio = float_of_int allocations /. float_of_int free_slots in
  let ratio = Float.min 1. ratio in
  1. -. Float.pow ratio (float_of_int replicas)

let uninit_detect_probability ~bits ~replicas =
  if bits < 0 then invalid_arg "Theorems: bits must be >= 0";
  if replicas < 1 then invalid_arg "Theorems: replicas must be >= 1";
  (* P = prod_{i=0}^{k-1} (2^B - i) / 2^B, in log space. *)
  let values = Float.pow 2. (float_of_int bits) in
  if float_of_int replicas > values then 0.
  else begin
    let log_p = ref 0. in
    for i = 0 to replicas - 1 do
      log_p := !log_p +. log ((values -. float_of_int i) /. values)
    done;
    exp !log_p
  end

let multiple_errors_mask_probability ps =
  List.iter
    (fun p ->
      if p < 0. || p > 1. then
        invalid_arg "Theorems: probabilities must lie in [0,1]")
    ps;
  List.fold_left ( *. ) 1. ps

let expected_probes ~multiplier =
  if multiplier < 2 then invalid_arg "Theorems: multiplier must be >= 2";
  1. /. (1. -. (1. /. float_of_int multiplier))

let expected_separation ~multiplier =
  if multiplier < 2 then invalid_arg "Theorems: multiplier must be >= 2";
  float_of_int (multiplier - 1)

let figure_4a ~replicas ~fullness =
  List.map
    (fun f ->
      ( f,
        List.map
          (fun k ->
            (k, overflow_mask_probability ~free_fraction:(1. -. f) ~objects:1 ~replicas:k))
          replicas ))
    fullness

let figure_4b ~heap_size ~multiplier ~object_sizes ~allocations =
  let region = heap_size / Dh_alloc.Size_class.count in
  List.map
    (fun size ->
      (* Q = F/S: free slots in this class's region.  With the region at
         most 1/M full, at least (1 - 1/M) of its slots are free; the
         paper's default-configuration curve uses the capacity available
         for allocation, region/M slots of head-room against which the A
         intervening allocations land. *)
      let free_slots = region / multiplier / size in
      ( size,
        List.map
          (fun a -> (a, dangling_mask_probability ~allocations:a ~free_slots ~replicas:1))
          allocations ))
    object_sizes

let uninit_detect_table ~bits ~replicas =
  List.map
    (fun b ->
      (b, List.map (fun k -> (k, uninit_detect_probability ~bits:b ~replicas:k)) replicas))
    bits
