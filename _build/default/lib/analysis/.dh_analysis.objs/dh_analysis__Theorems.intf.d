lib/analysis/theorems.mli:
