lib/analysis/theorems.ml: Dh_alloc Float List
