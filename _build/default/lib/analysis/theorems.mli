(** Closed-form probabilistic-memory-safety guarantees (paper §6).

    These are DieHard's "hard analytical guarantees": lower bounds on the
    probability of masking buffer overflows and dangling-pointer errors,
    and the exact probability of detecting uninitialized reads.  The
    Monte-Carlo experiments in the benchmark harness validate the
    implemented allocator against these formulas.

    Notation follows the paper: [M] the heap-expansion factor, [k] the
    number of replicas, [H] the maximum heap size, [L] the live size,
    [F = H - L] the free space, [O] the number of objects' worth of bytes
    an overflow clobbers, [A] the number of allocations intervening after
    a premature free, [S] the object size, [B] the number of
    uninitialized bits read. *)

val overflow_mask_probability : free_fraction:float -> objects:int -> replicas:int -> float
(** Theorem 1: [P(OverflowedObjects = 0) = 1 - (1 - (F/H)^O)^k] — the
    probability that an overflow of [objects] objects' worth of bytes
    overwrites no live object in at least one replica.  [free_fraction]
    is [F/H].  Requires [replicas <> 2] per the paper's voting caveat
    (checked). *)

val dangling_mask_probability :
  allocations:int -> free_slots:int -> replicas:int -> float
(** Theorem 2: [P(Overwrites = 0) >= 1 - (A / Q)^k] where [Q = F/S] is
    the number of free slots in the object's size class.  The probability
    that an object freed [allocations] too early is still intact.
    Clamped to [0, 1] (the bound is vacuous once [A > Q]). *)

val uninit_detect_probability : bits:int -> replicas:int -> float
(** Theorem 3: [P = (2^B)! / ((2^B - k)! * 2^(Bk))] — the probability
    that [k] replicas all produce different output from an uninitialized
    read of [bits] bits (non-narrowing, non-widening computation).
    Computed in log space so large [bits] do not overflow.  Returns 0
    when [replicas > 2^bits] (pigeonhole: two replicas must agree). *)

val multiple_errors_mask_probability : float list -> float
(** §6's composition note: "One can calculate the probability of
    avoiding multiple errors by multiplying the probabilities of
    avoiding each error" (under the stated independence assumption).
    Takes the per-error masking probabilities. *)

val expected_probes : multiplier:int -> float
(** §4.2: expected bitmap probes per allocation, [1 / (1 - 1/M)]. *)

val expected_separation : multiplier:int -> float
(** §3.1: expected minimum separation between live objects, [M - 1]
    objects — what makes overflows smaller than [M-1] objects benign. *)

(** {1 Series generators for the paper's figures} *)

val figure_4a : replicas:int list -> fullness:float list -> (float * (int * float) list) list
(** Figure 4(a): for each heap fullness (1/8, 1/4, 1/2 in the paper),
    the masking probability of a single-object overflow per replica
    count.  Returns [(fullness, [(k, p); ...])] rows. *)

val figure_4b :
  heap_size:int ->
  multiplier:int ->
  object_sizes:int list ->
  allocations:int list ->
  (int * (int * float) list) list
(** Figure 4(b): stand-alone DieHard ([k = 1]) in the given
    configuration; for each object size, the masking probability per
    intervening-allocation count.  [Q] is derived from the size-class
    region geometry exactly as {!Diehard.Config} computes it.
    Returns [(object_size, [(allocations, p); ...])] rows. *)

val uninit_detect_table : bits:int list -> replicas:int list -> (int * (int * float) list) list
(** §6.3's examples: detection probability per (B, k). *)
