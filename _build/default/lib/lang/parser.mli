(** Recursive-descent parser for MiniC.

    The grammar is small enough that a hand parser with precedence
    climbing is clearer than a generated one (menhir is also not
    available in this environment; see DESIGN.md).

    Operator precedence, loosest to tightest:
    [||] < [&&] < [|] < [^] < [&] < [== !=] < [< <= > >=] < [<< >>]
    < [+ -] < [* / %] < unary [! ~ - *] < postfix (indexing, calls). *)

exception Syntax_error of string * int * int
(** [Syntax_error (message, line, col)]. *)

val parse_program : string -> Ast.program
(** Parse a full source file: a sequence of [fn name(params) { ... }]
    definitions.  Raises {!Syntax_error} or {!Lexer.Lex_error}. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression — convenience for tests. *)
