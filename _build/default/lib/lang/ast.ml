type unop = Neg | Not | Bnot | Deref

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int of int
  | Char of char
  | Str of string
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Index of expr * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lderef of expr | Lindex of expr * expr

type stmt =
  | Decl of string * expr
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Break
  | Continue
  | Expr of expr
  | Block of block

and block = stmt list

type func = { name : string; params : string list; body : block }
type program = { funcs : func list }

let find_func program name = List.find_opt (fun f -> f.name = name) program.funcs

let string_literals program =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let note s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      acc := s :: !acc
    end
  in
  let rec expr = function
    | Int _ | Char _ | Var _ -> ()
    | Str s -> note s
    | Unop (_, e) -> expr e
    | Binop (_, a, b) ->
      expr a;
      expr b
    | Index (a, b) ->
      expr a;
      expr b
    | Call (_, args) -> List.iter expr args
  in
  let lvalue = function
    | Lvar _ -> ()
    | Lderef e -> expr e
    | Lindex (a, b) ->
      expr a;
      expr b
  in
  let rec stmt = function
    | Decl (_, e) | Expr e -> expr e
    | Assign (lv, e) ->
      lvalue lv;
      expr e
    | If (c, t, f) ->
      expr c;
      List.iter stmt t;
      List.iter stmt f
    | While (c, b) ->
      expr c;
      List.iter stmt b
    | For (init, cond, step, b) ->
      Option.iter stmt init;
      Option.iter expr cond;
      Option.iter stmt step;
      List.iter stmt b
    | Return e -> Option.iter expr e
    | Break | Continue -> ()
    | Block b -> List.iter stmt b
  in
  List.iter (fun f -> List.iter stmt f.body) program.funcs;
  List.rev !acc

(* --- pretty printing (emits parseable concrete syntax) --- *)

let unop_string = function Neg -> "-" | Not -> "!" | Bnot -> "~" | Deref -> "*"

let binop_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\000' -> Buffer.add_string buf "\\0"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Char c -> Format.fprintf ppf "'%s'" (escape_string (String.make 1 c))
  | Str s -> Format.fprintf ppf "\"%s\"" (escape_string s)
  | Var x -> Format.pp_print_string ppf x
  | Unop (op, e) -> Format.fprintf ppf "%s(%a)" (unop_string op) pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_string op) pp_expr b
  | Index (a, b) -> Format.fprintf ppf "%a[%a]" pp_atom a pp_expr b
  | Call (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      args

and pp_atom ppf e =
  match e with
  | Int _ | Char _ | Str _ | Var _ | Call _ | Index _ -> pp_expr ppf e
  | Unop _ | Binop _ -> Format.fprintf ppf "(%a)" pp_expr e

let pp_lvalue ppf = function
  | Lvar x -> Format.pp_print_string ppf x
  | Lderef e -> Format.fprintf ppf "*%a" pp_atom e
  | Lindex (a, b) -> Format.fprintf ppf "%a[%a]" pp_atom a pp_expr b

let rec pp_stmt ppf = function
  | Decl (x, e) -> Format.fprintf ppf "@[<h>var %s = %a;@]" x pp_expr e
  | Assign (lv, e) -> Format.fprintf ppf "@[<h>%a = %a;@]" pp_lvalue lv pp_expr e
  | If (c, t, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | If (c, t, f) ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
      pp_block t pp_block f
  | While (c, b) -> Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block b
  | For (init, cond, step, b) ->
    let pp_opt_stmt ppf = function
      | Some s -> pp_inline_stmt ppf s
      | None -> ()
    in
    let pp_opt_expr ppf = function Some e -> pp_expr ppf e | None -> () in
    Format.fprintf ppf "@[<v 2>for (%a; %a; %a) {@,%a@]@,}" pp_opt_stmt init pp_opt_expr
      cond pp_opt_stmt step pp_block b
  | Return None -> Format.pp_print_string ppf "return;"
  | Return (Some e) -> Format.fprintf ppf "@[<h>return %a;@]" pp_expr e
  | Break -> Format.pp_print_string ppf "break;"
  | Continue -> Format.pp_print_string ppf "continue;"
  | Expr e -> Format.fprintf ppf "@[<h>%a;@]" pp_expr e
  | Block b -> Format.fprintf ppf "@[<v 2>{@,%a@]@,}" pp_block b

(* statements inside for-headers are printed without the trailing ';' *)
and pp_inline_stmt ppf s =
  let str = Format.asprintf "%a" pp_stmt s in
  let str =
    if String.length str > 0 && str.[String.length str - 1] = ';' then
      String.sub str 0 (String.length str - 1)
    else str
  in
  Format.pp_print_string ppf str

and pp_block ppf b =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf b

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>fn %s(%a) {@,%a@]@,}" f.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    f.params pp_block f.body

let pp_program ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_func ppf p.funcs

let to_string p = Format.asprintf "@[<v>%a@]@." pp_program p
