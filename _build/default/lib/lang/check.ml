type diagnostic = { where : string; message : string }

let builtin_arity = function
  | "malloc" | "calloc" | "free" | "print_int" | "print_char" | "print_str"
  | "strlen" | "gets" | "load8" | "exit" ->
    Some 1
  | "realloc" | "strcpy" | "strcmp" | "store8" -> Some 2
  | "strncpy" | "memcpy" | "memset" -> Some 3
  | "getchar" | "now" -> Some 0
  | _ -> None

type env = {
  funcs : (string, int) Hashtbl.t;  (* name -> arity *)
  mutable diagnostics : diagnostic list;  (* newest first *)
  mutable current : string;
  mutable scopes : (string, unit) Hashtbl.t list;
  mutable loop_depth : int;
}

let report env fmt =
  Format.kasprintf
    (fun message -> env.diagnostics <- { where = env.current; message } :: env.diagnostics)
    fmt

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare env name =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name ()
  | [] -> ()

let in_scope env name = List.exists (fun scope -> Hashtbl.mem scope name) env.scopes

let rec check_expr env (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Char _ | Ast.Str _ -> ()
  | Ast.Var x -> if not (in_scope env x) then report env "unknown variable %s" x
  | Ast.Unop (_, e) -> check_expr env e
  | Ast.Binop (_, a, b) ->
    check_expr env a;
    check_expr env b
  | Ast.Index (a, b) ->
    check_expr env a;
    check_expr env b
  | Ast.Call (name, args) ->
    List.iter (check_expr env) args;
    let got = List.length args in
    (match (Hashtbl.find_opt env.funcs name, builtin_arity name) with
    | Some arity, _ ->
      if got <> arity then
        report env "%s expects %d argument(s), got %d" name arity got
    | None, Some arity ->
      if got <> arity then
        report env "builtin %s expects %d argument(s), got %d" name arity got
    | None, None -> report env "unknown function %s" name)

let check_lvalue env = function
  | Ast.Lvar x -> if not (in_scope env x) then report env "unknown variable %s" x
  | Ast.Lderef e -> check_expr env e
  | Ast.Lindex (a, b) ->
    check_expr env a;
    check_expr env b

let rec check_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Decl (x, e) ->
    check_expr env e;
    declare env x
  | Ast.Assign (lv, e) ->
    check_expr env e;
    check_lvalue env lv
  | Ast.If (c, t, f) ->
    check_expr env c;
    check_block env t;
    check_block env f
  | Ast.While (c, body) ->
    check_expr env c;
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    env.loop_depth <- env.loop_depth - 1
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    Option.iter (check_stmt env) init;
    Option.iter (check_expr env) cond;
    env.loop_depth <- env.loop_depth + 1;
    check_block env body;
    (* the step runs in the header's scope, after the body *)
    Option.iter (check_stmt env) step;
    env.loop_depth <- env.loop_depth - 1;
    pop_scope env
  | Ast.Return e -> Option.iter (check_expr env) e
  | Ast.Break -> if env.loop_depth = 0 then report env "break outside a loop"
  | Ast.Continue -> if env.loop_depth = 0 then report env "continue outside a loop"
  | Ast.Expr e -> check_expr env e
  | Ast.Block b -> check_block env b

and check_block env block =
  push_scope env;
  List.iter (check_stmt env) block;
  pop_scope env

let check_func env (f : Ast.func) =
  env.current <- f.Ast.name;
  env.loop_depth <- 0;
  env.scopes <- [];
  push_scope env;
  let seen = Hashtbl.create 4 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p then report env "duplicate parameter %s" p;
      Hashtbl.replace seen p ();
      declare env p)
    f.Ast.params;
  check_block env f.Ast.body;
  pop_scope env

let check (program : Ast.program) =
  let env =
    {
      funcs = Hashtbl.create 16;
      diagnostics = [];
      current = "<toplevel>";
      scopes = [];
      loop_depth = 0;
    }
  in
  List.iter
    (fun f ->
      if Hashtbl.mem env.funcs f.Ast.name then
        report env "duplicate function %s" f.Ast.name
      else begin
        if builtin_arity f.Ast.name <> None then
          report env "function %s shadows a builtin" f.Ast.name;
        Hashtbl.replace env.funcs f.Ast.name (List.length f.Ast.params)
      end)
    program.Ast.funcs;
  (match Ast.find_func program "main" with
  | None -> report env "no main function"
  | Some f -> if f.Ast.params <> [] then report env "main takes no parameters");
  List.iter (check_func env) program.Ast.funcs;
  List.rev env.diagnostics

let pp_diagnostic ppf { where; message } = Format.fprintf ppf "in %s: %s" where message

let check_source source =
  match Parser.parse_program source with
  | exception Lexer.Lex_error (msg, line, col) ->
    Error [ Printf.sprintf "%d:%d: lexical error: %s" line col msg ]
  | exception Parser.Syntax_error (msg, line, col) ->
    Error [ Printf.sprintf "%d:%d: syntax error: %s" line col msg ]
  | program -> (
    match check program with
    | [] -> Ok program
    | diagnostics ->
      Error (List.map (Format.asprintf "%a" pp_diagnostic) diagnostics))
