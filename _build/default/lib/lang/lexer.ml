type token =
  | INT of int
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW_FN | KW_VAR | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ
  | EQEQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EOF

type positioned = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let keyword_of = function
  | "fn" -> Some KW_FN
  | "var" -> Some KW_VAR
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.src then Some cur.src.[cur.pos + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
    cur.line <- cur.line + 1;
    cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let error cur msg = raise (Lex_error (msg, cur.line, cur.col))

let read_escape cur =
  advance cur;  (* consume backslash *)
  match peek cur with
  | Some 'n' -> advance cur; '\n'
  | Some 't' -> advance cur; '\t'
  | Some 'r' -> advance cur; '\r'
  | Some '0' -> advance cur; '\000'
  | Some '\\' -> advance cur; '\\'
  | Some '\'' -> advance cur; '\''
  | Some '"' -> advance cur; '"'
  | Some c -> error cur (Printf.sprintf "unknown escape '\\%c'" c)
  | None -> error cur "unterminated escape"

let rec skip_trivia cur =
  match peek cur with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance cur;
    skip_trivia cur
  | Some '/' when peek2 cur = Some '/' ->
    while peek cur <> None && peek cur <> Some '\n' do
      advance cur
    done;
    skip_trivia cur
  | Some '/' when peek2 cur = Some '*' ->
    advance cur;
    advance cur;
    let rec gobble () =
      match (peek cur, peek2 cur) with
      | Some '*', Some '/' ->
        advance cur;
        advance cur
      | Some _, _ ->
        advance cur;
        gobble ()
      | None, _ -> error cur "unterminated comment"
    in
    gobble ();
    skip_trivia cur
  | Some _ | None -> ()

let next_token cur =
  skip_trivia cur;
  let line = cur.line and col = cur.col in
  let emit token = { token; line; col } in
  match peek cur with
  | None -> emit EOF
  | Some c when is_digit c ->
    let start = cur.pos in
    while (match peek cur with Some c -> is_digit c || c = 'x' || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') | None -> false) do
      advance cur
    done;
    let text = String.sub cur.src start (cur.pos - start) in
    (match int_of_string_opt text with
    | Some n -> emit (INT n)
    | None -> raise (Lex_error (Printf.sprintf "bad number %S" text, line, col)))
  | Some c when is_ident_start c ->
    let start = cur.pos in
    while (match peek cur with Some c -> is_ident_char c | None -> false) do
      advance cur
    done;
    let text = String.sub cur.src start (cur.pos - start) in
    (match keyword_of text with Some kw -> emit kw | None -> emit (IDENT text))
  | Some '"' ->
    advance cur;
    let buf = Buffer.create 16 in
    let rec go () =
      match peek cur with
      | Some '"' -> advance cur
      | Some '\\' -> Buffer.add_char buf (read_escape cur); go ()
      | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
      | None -> error cur "unterminated string literal"
    in
    go ();
    emit (STRING (Buffer.contents buf))
  | Some '\'' ->
    advance cur;
    let c =
      match peek cur with
      | Some '\\' -> read_escape cur
      | Some c ->
        advance cur;
        c
      | None -> error cur "unterminated character literal"
    in
    (match peek cur with
    | Some '\'' ->
      advance cur;
      emit (CHAR c)
    | Some _ | None -> error cur "expected closing quote in character literal")
  | Some c ->
    advance cur;
    let two expected single double_tok =
      if peek cur = Some expected then begin
        advance cur;
        emit double_tok
      end
      else emit single
    in
    (match c with
    | '(' -> emit LPAREN
    | ')' -> emit RPAREN
    | '{' -> emit LBRACE
    | '}' -> emit RBRACE
    | '[' -> emit LBRACKET
    | ']' -> emit RBRACKET
    | ',' -> emit COMMA
    | ';' -> emit SEMI
    | '+' -> emit PLUS
    | '-' -> emit MINUS
    | '*' -> emit STAR
    | '/' -> emit SLASH
    | '%' -> emit PERCENT
    | '^' -> emit CARET
    | '~' -> emit TILDE
    | '=' -> two '=' EQ EQEQ
    | '!' -> two '=' BANG NE
    | '<' ->
      if peek cur = Some '=' then begin advance cur; emit LE end
      else if peek cur = Some '<' then begin advance cur; emit SHL end
      else emit LT
    | '>' ->
      if peek cur = Some '=' then begin advance cur; emit GE end
      else if peek cur = Some '>' then begin advance cur; emit SHR end
      else emit GT
    | '&' -> two '&' AMP AMPAMP
    | '|' -> two '|' PIPE PIPEPIPE
    | c ->
      (* report at the character's own position, not after the advance *)
      raise (Lex_error (Printf.sprintf "unexpected character %C" c, line, col)))

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let acc = ref [] in
  let rec go () =
    let t = next_token cur in
    acc := t :: !acc;
    if t.token <> EOF then go ()
  in
  go ();
  Array.of_list (List.rev !acc)

let token_to_string = function
  | INT n -> string_of_int n
  | CHAR c -> Printf.sprintf "%C" c
  | STRING s -> Printf.sprintf "%S" s
  | IDENT x -> x
  | KW_FN -> "fn" | KW_VAR -> "var" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_FOR -> "for" | KW_RETURN -> "return"
  | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]"
  | COMMA -> "," | SEMI -> ";"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | EQ -> "=" | EQEQ -> "==" | NE -> "!=" | LT -> "<" | LE -> "<=" | GT -> ">"
  | GE -> ">=" | AMPAMP -> "&&" | PIPEPIPE -> "||" | BANG -> "!"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~" | SHL -> "<<" | SHR -> ">>"
  | EOF -> "<eof>"
