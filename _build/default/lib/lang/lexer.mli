(** Hand-written lexer for MiniC.

    Produces a token array with line/column positions for error messages.
    Comments are [// to end of line] and [/* ... */] (non-nesting). *)

type token =
  | INT of int
  | CHAR of char
  | STRING of string
  | IDENT of string
  | KW_FN | KW_VAR | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | EQ  (** [=] *)
  | EQEQ | NE | LT | LE | GT | GE
  | AMPAMP | PIPEPIPE | BANG
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EOF

type positioned = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** [Lex_error (message, line, col)]. *)

val tokenize : string -> positioned array
(** Tokenize a whole source string; the final element is always [EOF].
    Raises {!Lex_error} on malformed input. *)

val token_to_string : token -> string
