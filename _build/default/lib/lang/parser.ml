open Lexer

exception Syntax_error of string * int * int

type state = { tokens : positioned array; mutable pos : int }

let current st = st.tokens.(st.pos)

let error st msg =
  let { token; line; col } = current st in
  raise
    (Syntax_error (Printf.sprintf "%s (found %s)" msg (token_to_string token), line, col))

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let eat st token =
  if (current st).token = token then advance st
  else error st (Printf.sprintf "expected %s" (token_to_string token))

let eat_ident st =
  match (current st).token with
  | IDENT x ->
    advance st;
    x
  | _ -> error st "expected identifier"

(* --- expressions: precedence climbing --- *)

let binop_of_token = function
  | PIPEPIPE -> Some (Ast.Or, 1)
  | AMPAMP -> Some (Ast.And, 2)
  | PIPE -> Some (Ast.Bor, 3)
  | CARET -> Some (Ast.Bxor, 4)
  | AMP -> Some (Ast.Band, 5)
  | EQEQ -> Some (Ast.Eq, 6)
  | NE -> Some (Ast.Ne, 6)
  | LT -> Some (Ast.Lt, 7)
  | LE -> Some (Ast.Le, 7)
  | GT -> Some (Ast.Gt, 7)
  | GE -> Some (Ast.Ge, 7)
  | SHL -> Some (Ast.Shl, 8)
  | SHR -> Some (Ast.Shr, 8)
  | PLUS -> Some (Ast.Add, 9)
  | MINUS -> Some (Ast.Sub, 9)
  | STAR -> Some (Ast.Mul, 10)
  | SLASH -> Some (Ast.Div, 10)
  | PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expression st = parse_binary st 1

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (current st).token with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop (Ast.Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  match (current st).token with
  | MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | TILDE ->
    advance st;
    Ast.Unop (Ast.Bnot, parse_unary st)
  | STAR ->
    advance st;
    Ast.Unop (Ast.Deref, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let base = parse_primary st in
  let rec loop e =
    match (current st).token with
    | LBRACKET ->
      advance st;
      let index = parse_expression st in
      eat st RBRACKET;
      loop (Ast.Index (e, index))
    | _ -> e
  in
  loop base

and parse_primary st =
  match (current st).token with
  | INT n ->
    advance st;
    Ast.Int n
  | CHAR c ->
    advance st;
    Ast.Char c
  | STRING s ->
    advance st;
    Ast.Str s
  | IDENT name ->
    advance st;
    if (current st).token = LPAREN then begin
      advance st;
      let args = parse_args st in
      eat st RPAREN;
      Ast.Call (name, args)
    end
    else Ast.Var name
  | LPAREN ->
    advance st;
    let e = parse_expression st in
    eat st RPAREN;
    e
  | _ -> error st "expected an expression"

and parse_args st =
  if (current st).token = RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expression st in
      if (current st).token = COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []
  end

(* --- statements --- *)

let lvalue_of_expr st = function
  | Ast.Var x -> Ast.Lvar x
  | Ast.Unop (Ast.Deref, e) -> Ast.Lderef e
  | Ast.Index (a, b) -> Ast.Lindex (a, b)
  | _ -> error st "left-hand side is not assignable"

(* A "simple" statement is one legal inside a for-header: a declaration,
   an assignment, or an expression — no trailing semicolon. *)
let rec parse_simple_stmt st =
  match (current st).token with
  | KW_VAR ->
    advance st;
    let x = eat_ident st in
    eat st EQ;
    let e = parse_expression st in
    Ast.Decl (x, e)
  | _ ->
    let e = parse_expression st in
    if (current st).token = EQ then begin
      advance st;
      let rhs = parse_expression st in
      Ast.Assign (lvalue_of_expr st e, rhs)
    end
    else Ast.Expr e

and parse_stmt st =
  match (current st).token with
  | KW_IF ->
    advance st;
    eat st LPAREN;
    let cond = parse_expression st in
    eat st RPAREN;
    let then_block = parse_block st in
    let else_block =
      if (current st).token = KW_ELSE then begin
        advance st;
        if (current st).token = KW_IF then [ parse_stmt st ] else parse_block st
      end
      else []
    in
    Ast.If (cond, then_block, else_block)
  | KW_WHILE ->
    advance st;
    eat st LPAREN;
    let cond = parse_expression st in
    eat st RPAREN;
    Ast.While (cond, parse_block st)
  | KW_FOR ->
    advance st;
    eat st LPAREN;
    let init =
      if (current st).token = SEMI then None else Some (parse_simple_stmt st)
    in
    eat st SEMI;
    let cond = if (current st).token = SEMI then None else Some (parse_expression st) in
    eat st SEMI;
    let step =
      if (current st).token = RPAREN then None else Some (parse_simple_stmt st)
    in
    eat st RPAREN;
    Ast.For (init, cond, step, parse_block st)
  | KW_RETURN ->
    advance st;
    if (current st).token = SEMI then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expression st in
      eat st SEMI;
      Ast.Return (Some e)
    end
  | KW_BREAK ->
    advance st;
    eat st SEMI;
    Ast.Break
  | KW_CONTINUE ->
    advance st;
    eat st SEMI;
    Ast.Continue
  | LBRACE -> Ast.Block (parse_block st)
  | _ ->
    let s = parse_simple_stmt st in
    eat st SEMI;
    s

and parse_block st =
  eat st LBRACE;
  let rec loop acc =
    if (current st).token = RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

let parse_func st =
  eat st KW_FN;
  let name = eat_ident st in
  eat st LPAREN;
  let params =
    if (current st).token = RPAREN then []
    else begin
      let rec loop acc =
        let p = eat_ident st in
        if (current st).token = COMMA then begin
          advance st;
          loop (p :: acc)
        end
        else List.rev (p :: acc)
      in
      loop []
    end
  in
  eat st RPAREN;
  let body = parse_block st in
  { Ast.name; params; body }

let parse_program src =
  let st = { tokens = tokenize src; pos = 0 } in
  let rec loop acc =
    if (current st).token = EOF then { Ast.funcs = List.rev acc }
    else loop (parse_func st :: acc)
  in
  loop []

let parse_expr src =
  let st = { tokens = tokenize src; pos = 0 } in
  let e = parse_expression st in
  if (current st).token <> EOF then error st "trailing input after expression";
  e
