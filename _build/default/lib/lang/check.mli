(** Static checking for MiniC programs.

    MiniC is deliberately unsafe about {e memory}, but there is no value
    in letting programs die at runtime on plain name errors — those are
    bugs in the experiment's input, not simulated memory errors (see
    {!Interp.Runtime_error}).  This pass catches them before execution:

    - calls to unknown functions (neither user-defined nor builtin);
    - wrong arity at every call site (user functions and builtins);
    - uses of variables that are not in scope (block-scoped [var],
      function parameters; functions do not see their callers' locals);
    - duplicate function definitions and duplicate parameter names;
    - [break]/[continue] outside any loop;
    - a missing or parameterised [main].

    The checker is purely syntactic/scoping — it does not try to prove
    memory safety (that is the whole point of the paper). *)

type diagnostic = {
  where : string;  (** Enclosing function name. *)
  message : string;
}

val check : Ast.program -> diagnostic list
(** All diagnostics, in program order.  Empty = the program will not
    raise {!Interp.Runtime_error} for name/arity reasons (division by
    zero remains a runtime matter). *)

val check_source : string -> (Ast.program, string list) result
(** Parse then check; [Error] carries formatted syntax or semantic
    diagnostics. *)

val builtin_arity : string -> int option
(** Arity of an interpreter builtin, if [name] is one — shared with the
    interpreter so the checker and the runtime cannot drift apart. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
