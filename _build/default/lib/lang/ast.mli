(** Abstract syntax of MiniC.

    MiniC is the small unsafe C-like language this repository uses to
    write the buggy "applications" of the paper's experiments.  It is a
    word machine: every value is a 63-bit integer, and pointers are plain
    integers into the simulated address space, so all of C's memory
    errors — overflows, dangling pointers, double frees, uninitialized
    reads, wild writes — can be expressed (and committed) naturally.

    Words are 8 bytes.  [e1\[e2\]] indexes by {e words} (address
    [e1 + 8*e2]); [*e] loads a word; the [load8]/[store8] builtins give
    byte access.  Strings are NUL-terminated byte arrays allocated from
    the program's heap at startup. *)

type unop =
  | Neg  (** [-e] *)
  | Not  (** [!e], logical *)
  | Bnot  (** [~e], bitwise *)
  | Deref  (** [*e], word load *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or  (** short-circuit logical *)
  | Band | Bor | Bxor | Shl | Shr

type expr =
  | Int of int
  | Char of char
  | Str of string  (** evaluates to the literal's heap address *)
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Index of expr * expr  (** [e1\[e2\]]: word load at [e1 + 8*e2] *)
  | Call of string * expr list  (** user function or builtin *)

type lvalue =
  | Lvar of string
  | Lderef of expr  (** [*e = ...] *)
  | Lindex of expr * expr  (** [e1\[e2\] = ...] *)

type stmt =
  | Decl of string * expr  (** [var x = e;] *)
  | Assign of lvalue * expr
  | If of expr * block * block
  | While of expr * block
  | For of stmt option * expr option * stmt option * block
  | Return of expr option
  | Break
  | Continue
  | Expr of expr  (** expression statement (calls) *)
  | Block of block

and block = stmt list

type func = { name : string; params : string list; body : block }

type program = { funcs : func list }

val find_func : program -> string -> func option

val string_literals : program -> string list
(** Every distinct string literal, in first-appearance order — the
    interpreter allocates these at startup. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_program : Format.formatter -> program -> unit

val to_string : program -> string
(** Pretty-print back to concrete MiniC syntax (parseable). *)
