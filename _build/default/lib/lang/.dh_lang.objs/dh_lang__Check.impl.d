lib/lang/check.ml: Ast Format Hashtbl Lexer List Option Parser Printf
