lib/lang/ast.ml: Buffer Format Hashtbl List Option String
