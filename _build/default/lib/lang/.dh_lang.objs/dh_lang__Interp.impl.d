lib/lang/interp.ml: Ast Char Dh_alloc Dh_mem Format Hashtbl List Option Parser String
