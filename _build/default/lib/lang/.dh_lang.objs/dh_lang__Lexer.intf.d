lib/lang/lexer.mli:
