lib/lang/interp.mli: Ast Dh_alloc
