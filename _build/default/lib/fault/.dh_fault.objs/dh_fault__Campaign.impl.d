lib/fault/campaign.ml: Dh_alloc Dh_mem Format Fun Injector List Printf String
