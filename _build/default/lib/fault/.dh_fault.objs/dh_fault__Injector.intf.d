lib/fault/injector.mli: Dh_alloc
