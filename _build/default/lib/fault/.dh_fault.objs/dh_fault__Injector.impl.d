lib/fault/injector.ml: Dh_alloc Dh_rng Hashtbl List Option
