lib/fault/campaign.mli: Dh_alloc Dh_mem Format Injector
