(** The fault-injection library of §7.3.1.

    "We implement two libraries that inject memory errors into unaltered
    applications … The fault injector triggers errors probabilistically,
    based on the requested frequencies.  To trigger an underflow, it
    requests less memory from the underlying allocator than was requested
    by the application.  To trigger a dangling pointer error, it uses the
    log to invoke free on an object before it is actually freed by the
    application, and ignores the subsequent (actual) call to free this
    object."

    The injector sits between the application and the memory allocator as
    a wrapping {!Dh_alloc.Allocator.t}.  Dangling-pointer injection is
    trace-driven: it needs the allocation log from a previous run under
    the {!Dh_alloc.Trace} allocator. *)

type spec = {
  underflow_rate : float;
      (** Probability that an allocation is under-allocated. *)
  underflow_bytes : int;  (** How many bytes to shave off (paper: 4). *)
  underflow_min_size : int;
      (** Only under-allocate requests at least this large (paper: 32). *)
  dangling_rate : float;
      (** Probability that a freed object is freed early instead. *)
  dangling_distance : int;
      (** How many allocations early to free it (paper: 10). *)
  double_free_rate : float;
      (** Probability that an accepted [free] is issued twice —
          exercises the Table 1 "double frees" row. *)
  invalid_free_rate : float;
      (** Probability that a bogus interior pointer is also freed. *)
  seed : int;  (** Injection randomness (independent of the heap's). *)
}

val nothing : spec
(** All rates zero — the identity wrapper. *)

val paper_dangling : spec
(** §7.3.1's first experiment: dangling rate 1/2, distance 10. *)

val paper_overflow : spec
(** §7.3.1's second experiment: 1% of allocations of ≥ 32 bytes
    under-allocated by 4 bytes. *)

type t

val wrap : spec -> log:Dh_alloc.Trace.lifetime list -> Dh_alloc.Allocator.t -> t * Dh_alloc.Allocator.t
(** [wrap spec ~log alloc] returns the injector state and an allocator
    that forwards to [alloc] while injecting the configured faults.
    [log] is the allocation log from a tracing run of the same program
    (pass [\[\]] when only injecting underflows).

    Dangling injection follows the paper's mechanism: an object whose log
    entry says it is freed at allocation-time [f] is (with probability
    [dangling_rate]) freed as soon as the allocation clock reaches
    [f - dangling_distance]; the application's own later [free] of that
    pointer is then {e ignored} (swallowed by the wrapper, so allocators
    that would misbehave on the double free are not spuriously
    triggered — the injected error is purely the premature free). *)

val injected_underflows : t -> int
val injected_danglings : t -> int
val injected_double_frees : t -> int
val injected_invalid_frees : t -> int
