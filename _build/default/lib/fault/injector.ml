module Allocator = Dh_alloc.Allocator
module Trace = Dh_alloc.Trace
module Mwc = Dh_rng.Mwc

type spec = {
  underflow_rate : float;
  underflow_bytes : int;
  underflow_min_size : int;
  dangling_rate : float;
  dangling_distance : int;
  double_free_rate : float;
  invalid_free_rate : float;
  seed : int;
}

let nothing =
  {
    underflow_rate = 0.;
    underflow_bytes = 0;
    underflow_min_size = 0;
    dangling_rate = 0.;
    dangling_distance = 0;
    double_free_rate = 0.;
    invalid_free_rate = 0.;
    seed = 1;
  }

let paper_dangling = { nothing with dangling_rate = 0.5; dangling_distance = 10 }

let paper_overflow =
  { nothing with underflow_rate = 0.01; underflow_bytes = 4; underflow_min_size = 32 }

type t = {
  spec : spec;
  rng : Mwc.t;
  (* trigger allocation-clock -> alloc_times of objects to free early *)
  schedule : (int, int list) Hashtbl.t;
  (* live objects, by address and by allocation time *)
  addr_of_alloc_time : (int, int) Hashtbl.t;
  alloc_time_of_addr : (int, int) Hashtbl.t;
  (* Addresses whose next application [free] must be swallowed because
     the injector already freed that object.  A count, because the
     underlying allocator may recycle the address for a new object whose
     own (legitimate) free must still go through. *)
  swallow : (int, int) Hashtbl.t;
  mutable clock : int;
  mutable underflows : int;
  mutable danglings : int;
  mutable double_frees : int;
  mutable invalid_frees : int;
}

let chance t p = p > 0. && Mwc.float01 t.rng < p

let build_schedule t log =
  List.iter
    (fun { Trace.alloc_time; free_time; _ } ->
      if chance t t.spec.dangling_rate then begin
        (* Free at [free_time - distance], but no earlier than the
           object's own allocation. *)
        let trigger = max alloc_time (free_time - t.spec.dangling_distance) in
        if trigger < free_time then begin
          let existing = Option.value ~default:[] (Hashtbl.find_opt t.schedule trigger) in
          Hashtbl.replace t.schedule trigger (alloc_time :: existing)
        end
      end)
    log

let fire_schedule t (alloc : Allocator.t) =
  match Hashtbl.find_opt t.schedule t.clock with
  | None -> ()
  | Some victims ->
    Hashtbl.remove t.schedule t.clock;
    List.iter
      (fun victim_time ->
        match Hashtbl.find_opt t.addr_of_alloc_time victim_time with
        | Some addr ->
          Hashtbl.remove t.addr_of_alloc_time victim_time;
          Hashtbl.remove t.alloc_time_of_addr addr;
          let pending = Option.value ~default:0 (Hashtbl.find_opt t.swallow addr) in
          Hashtbl.replace t.swallow addr (pending + 1);
          t.danglings <- t.danglings + 1;
          alloc.Allocator.free addr
        | None -> ())
      victims

let wrap spec ~log alloc =
  let t =
    {
      spec;
      rng = Mwc.create ~seed:spec.seed;
      schedule = Hashtbl.create 64;
      addr_of_alloc_time = Hashtbl.create 64;
      alloc_time_of_addr = Hashtbl.create 64;
      swallow = Hashtbl.create 64;
      clock = 0;
      underflows = 0;
      danglings = 0;
      double_frees = 0;
      invalid_frees = 0;
    }
  in
  build_schedule t log;
  let malloc sz =
    let actual =
      if
        sz >= spec.underflow_min_size
        && spec.underflow_bytes > 0
        && chance t spec.underflow_rate
      then begin
        t.underflows <- t.underflows + 1;
        sz - spec.underflow_bytes
      end
      else sz
    in
    match alloc.Allocator.malloc actual with
    | None -> None
    | Some addr ->
      t.clock <- t.clock + 1;
      Hashtbl.replace t.addr_of_alloc_time t.clock addr;
      Hashtbl.replace t.alloc_time_of_addr addr t.clock;
      fire_schedule t alloc;
      Some addr
  in
  let forward_free addr =
    alloc.Allocator.free addr;
    if chance t spec.double_free_rate then begin
      t.double_frees <- t.double_frees + 1;
      alloc.Allocator.free addr
    end;
    if chance t spec.invalid_free_rate then begin
      t.invalid_frees <- t.invalid_frees + 1;
      alloc.Allocator.free (addr + 1 + Mwc.below t.rng 7)
    end
  in
  let free addr =
    match Hashtbl.find_opt t.swallow addr with
    | Some n ->
      (* The injected free already happened; swallow the real one
         ("ignores the subsequent (actual) call to free"). *)
      if n <= 1 then Hashtbl.remove t.swallow addr
      else Hashtbl.replace t.swallow addr (n - 1)
    | None -> (
      match Hashtbl.find_opt t.alloc_time_of_addr addr with
      | Some alloc_time ->
        Hashtbl.remove t.alloc_time_of_addr addr;
        Hashtbl.remove t.addr_of_alloc_time alloc_time;
        forward_free addr
      | None -> alloc.Allocator.free addr)
  in
  let wrapped =
    { alloc with Allocator.name = alloc.Allocator.name ^ "+inject"; malloc; free }
  in
  (t, wrapped)

let injected_underflows t = t.underflows
let injected_danglings t = t.danglings
let injected_double_frees t = t.double_frees
let injected_invalid_frees t = t.invalid_frees
