lib/simmem/fault.mli: Format
