lib/simmem/fault.ml: Format
