lib/simmem/process.mli: Fault Format
