lib/simmem/mem.mli: Dh_rng
