lib/simmem/mem.ml: Array Buffer Bytes Char Dh_rng Fault Hashtbl Int Int64 Map Option String
