lib/simmem/process.ml: Buffer Fault Format
