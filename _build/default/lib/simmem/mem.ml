type prot = No_access | Read_only | Read_write

let page_size = 4096
let word_size = 8

type segment = {
  base : int;
  len : int;  (* page-rounded *)
  data : Bytes.t;
  prot : prot array;  (* one entry per page *)
  touched : bool array;  (* pages written at least once *)
}

module Imap = Map.Make (Int)

type stats = {
  reads : int;
  writes : int;
  mmaps : int;
  munmaps : int;
  tlb_misses : int;
  cache_misses : int;
}

(* A small TLB model: [tlb_entries] pages, FIFO replacement.  Feeds the
   benchmark harness's cost model — random object placement (DieHard)
   touches many more pages than a compact allocator, which is exactly
   the overhead the paper attributes DieHard's slowdowns to (§4.5,
   §7.2.1: twolf "is due not to the cost of allocation but to TLB
   misses"). *)
let tlb_entries = 64

(* Data-cache model: [cache_lines] 64-byte lines, FIFO replacement.
   Charges cold traversals (GC marking, randomly-placed objects) that a
   purely functional simulator would otherwise treat as free. *)
let cache_lines = 1024
let cache_line_shift = 6

type t = {
  mutable segments : segment Imap.t;  (* keyed by base *)
  mutable next_base : int;
  mutable cache : segment option;  (* last segment hit *)
  mutable reads : int;
  mutable writes : int;
  mutable mmaps : int;
  mutable munmaps : int;
  mutable touched_pages : int;
  tlb_pages : int array;
  tlb_set : (int, unit) Hashtbl.t;
  mutable tlb_hand : int;
  mutable tlb_misses : int;
  cache_tags : int array;
  cache_set : (int, unit) Hashtbl.t;
  mutable cache_hand : int;
  mutable cache_misses : int;
}

let create () =
  {
    segments = Imap.empty;
    next_base = 16 * page_size;  (* keep a NULL-guard zone at the bottom *)
    cache = None;
    reads = 0;
    writes = 0;
    mmaps = 0;
    munmaps = 0;
    touched_pages = 0;
    tlb_pages = Array.make tlb_entries (-1);
    tlb_set = Hashtbl.create (2 * tlb_entries);
    tlb_hand = 0;
    tlb_misses = 0;
    cache_tags = Array.make cache_lines (-1);
    cache_set = Hashtbl.create (2 * cache_lines);
    cache_hand = 0;
    cache_misses = 0;
  }

let tlb_touch t addr =
  let page = addr / page_size in
  if not (Hashtbl.mem t.tlb_set page) then begin
    t.tlb_misses <- t.tlb_misses + 1;
    let old = t.tlb_pages.(t.tlb_hand) in
    if old >= 0 then Hashtbl.remove t.tlb_set old;
    t.tlb_pages.(t.tlb_hand) <- page;
    Hashtbl.replace t.tlb_set page ();
    t.tlb_hand <- (t.tlb_hand + 1) mod tlb_entries
  end;
  let line = addr lsr cache_line_shift in
  if not (Hashtbl.mem t.cache_set line) then begin
    t.cache_misses <- t.cache_misses + 1;
    let old = t.cache_tags.(t.cache_hand) in
    if old >= 0 then Hashtbl.remove t.cache_set old;
    t.cache_tags.(t.cache_hand) <- line;
    Hashtbl.replace t.cache_set line ();
    t.cache_hand <- (t.cache_hand + 1) mod cache_lines
  end

let round_pages len = (len + page_size - 1) / page_size * page_size

let mmap t ?(prot = Read_write) len =
  if len <= 0 then invalid_arg "Mem.mmap: length must be positive";
  let len = round_pages len in
  let base = t.next_base in
  (* Leave one unmapped hole page after each segment so that runs off the
     end of a mapping fault instead of silently landing in the next one. *)
  t.next_base <- base + len + page_size;
  let pages = len / page_size in
  let seg =
    {
      base;
      len;
      data = Bytes.make len '\000';
      prot = Array.make pages prot;
      touched = Array.make pages false;
    }
  in
  t.segments <- Imap.add base seg t.segments;
  t.mmaps <- t.mmaps + 1;
  base

let munmap t base =
  match Imap.find_opt base t.segments with
  | None -> Fault.raise_fault (Fault.Unmap_unmapped { addr = base })
  | Some seg ->
    t.segments <- Imap.remove base t.segments;
    t.munmaps <- t.munmaps + 1;
    (match t.cache with
    | Some c when c.base = seg.base -> t.cache <- None
    | Some _ | None -> ())

let find_segment t addr =
  match t.cache with
  | Some seg when addr >= seg.base && addr < seg.base + seg.len -> Some seg
  | Some _ | None -> (
    match Imap.find_last_opt (fun base -> base <= addr) t.segments with
    | Some (_, seg) when addr < seg.base + seg.len ->
      t.cache <- Some seg;
      Some seg
    | Some _ | None -> None)

let segment_of t addr =
  match find_segment t addr with
  | Some seg -> Some (seg.base, seg.len)
  | None -> None

let is_mapped t addr = Option.is_some (find_segment t addr)

let mapped_bytes t = Imap.fold (fun _ seg acc -> acc + seg.len) t.segments 0

let protect t ~addr ~len prot =
  if len <= 0 then invalid_arg "Mem.protect: length must be positive";
  match find_segment t addr with
  | None -> Fault.raise_fault (Fault.Unmapped { addr; access = Write })
  | Some seg ->
    if addr + len > seg.base + seg.len then
      Fault.raise_fault (Fault.Unmapped { addr = seg.base + seg.len; access = Write });
    let first = (addr - seg.base) / page_size in
    let last = (addr + len - 1 - seg.base) / page_size in
    for p = first to last do
      seg.prot.(p) <- prot
    done

(* Per-byte access check.  Returns the segment so callers can then touch
   the backing bytes directly. *)
let check t addr access =
  tlb_touch t addr;
  match find_segment t addr with
  | None -> Fault.raise_fault (Fault.Unmapped { addr; access })
  | Some seg ->
    let page = (addr - seg.base) / page_size in
    (match (seg.prot.(page), access) with
    | Read_write, _ | Read_only, Fault.Read -> ()
    | No_access, _ | Read_only, Fault.Write ->
      Fault.raise_fault (Fault.Protection { addr; access }));
    (match access with
    | Fault.Write ->
      if not seg.touched.(page) then begin
        seg.touched.(page) <- true;
        t.touched_pages <- t.touched_pages + 1
      end
    | Fault.Read -> ());
    seg

let read8 t addr =
  t.reads <- t.reads + 1;
  let seg = check t addr Fault.Read in
  Char.code (Bytes.get seg.data (addr - seg.base))

let write8 t addr v =
  t.writes <- t.writes + 1;
  let seg = check t addr Fault.Write in
  Bytes.set seg.data (addr - seg.base) (Char.chr (v land 0xFF))

(* Fast path for word access: when the whole word lies in one segment and
   one page, use Bytes.{get,set}_int64_le; otherwise fall back bytewise so
   faults land on the exact offending byte. *)
let word_fast t addr access =
  tlb_touch t addr;
  match find_segment t addr with
  | Some seg
    when addr + word_size <= seg.base + seg.len
         && (addr - seg.base) / page_size = (addr + word_size - 1 - seg.base) / page_size
    -> (
    let page = (addr - seg.base) / page_size in
    match (seg.prot.(page), access) with
    | Read_write, _ | Read_only, Fault.Read ->
      (match access with
      | Fault.Write ->
        if not seg.touched.(page) then begin
          seg.touched.(page) <- true;
          t.touched_pages <- t.touched_pages + 1
        end
      | Fault.Read -> ());
      Some seg
    | No_access, _ | Read_only, Fault.Write -> None)
  | Some _ | None -> None

let read64 t addr =
  t.reads <- t.reads + 1;
  match word_fast t addr Fault.Read with
  | Some seg -> Int64.to_int (Bytes.get_int64_le seg.data (addr - seg.base))
  | None ->
    let v = ref 0 in
    for i = word_size - 1 downto 0 do
      let seg = check t (addr + i) Fault.Read in
      v := (!v lsl 8) lor Char.code (Bytes.get seg.data (addr + i - seg.base))
    done;
    !v

let write64 t addr v =
  t.writes <- t.writes + 1;
  match word_fast t addr Fault.Write with
  | Some seg -> Bytes.set_int64_le seg.data (addr - seg.base) (Int64.of_int v)
  | None ->
    for i = 0 to word_size - 1 do
      let seg = check t (addr + i) Fault.Write in
      Bytes.set seg.data (addr + i - seg.base) (Char.chr ((v lsr (8 * i)) land 0xFF))
    done

let read_bytes t ~addr ~len =
  if len < 0 then invalid_arg "Mem.read_bytes: negative length";
  let buf = Bytes.create len in
  for i = 0 to len - 1 do
    t.reads <- t.reads + 1;
    let seg = check t (addr + i) Fault.Read in
    Bytes.set buf i (Bytes.get seg.data (addr + i - seg.base))
  done;
  Bytes.unsafe_to_string buf

let write_bytes t ~addr s =
  String.iteri
    (fun i c ->
      t.writes <- t.writes + 1;
      let seg = check t (addr + i) Fault.Write in
      Bytes.set seg.data (addr + i - seg.base) c)
    s

let fill t ~addr ~len c =
  for i = 0 to len - 1 do
    t.writes <- t.writes + 1;
    let seg = check t (addr + i) Fault.Write in
    Bytes.set seg.data (addr + i - seg.base) c
  done

let fill_random t ~addr ~len rng =
  let i = ref 0 in
  while !i < len do
    let v = Dh_rng.Mwc.next_u32 rng in
    let n = min 4 (len - !i) in
    for j = 0 to n - 1 do
      t.writes <- t.writes + 1;
      let seg = check t (addr + !i + j) Fault.Write in
      Bytes.set seg.data (addr + !i + j - seg.base) (Char.chr ((v lsr (8 * j)) land 0xFF))
    done;
    i := !i + n
  done

let cstring t addr =
  let buf = Buffer.create 16 in
  let rec go a =
    let c = read8 t a in
    if c = 0 then Buffer.contents buf
    else begin
      Buffer.add_char buf (Char.chr c);
      go (a + 1)
    end
  in
  go addr

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    mmaps = t.mmaps;
    munmaps = t.munmaps;
    tlb_misses = t.tlb_misses;
    cache_misses = t.cache_misses;
  }

let touched_pages t = t.touched_pages
