let espresso_rounds = 1500
let espresso_expected_rounds = espresso_rounds / 100

(* See the .mli for why this program has the shape it has.  Allocation
   profile: ~1600 objects of 16..160 bytes, linked cells read back and
   freed in batches, a ring of arrays re-read at eviction time. *)
let espresso_source =
  Printf.sprintf
    {|
// espresso-sim: allocation-intensive compute with linked structures.
fn main() {
  var ring = calloc(8 * 16);
  var head = 0;
  var nodes = 0;
  var acc = 0;
  for (var i = 0; i < %d; i = i + 1) {
    // a fresh working array; sizes are 4 mod 8, like real C structs,
    // so a 4-byte under-allocation really shrinks the usable space
    var sz = 12 + (i %% 7) * 20;
    var a = malloc(sz);
    var words = sz / 8;
    a[0] = sz;
    for (var j = 1; j < words; j = j + 1) { a[j] = i * 31 + j * 7 + 11; }
    store8(a + sz - 1, i);            // tail byte at the requested size
    for (var j = 1; j < words; j = j + 1) { acc = (acc + a[j]) %% 9973; }
    // evict the ring slot: re-read through the (old) pointer (its stored
    // size and its tail byte), then free
    var slot = i %% 16;
    if (ring[slot]) {
      var old = ring[slot];
      acc = (acc + old[0] + load8(old + old[0] - 1)) %% 9973;
      free(old);
    }
    ring[slot] = a;
    // push a list cell
    var n = malloc(16);
    n[0] = i;
    n[1] = head;
    head = n;
    nodes = nodes + 1;
    // periodically pop half the list: traverse and free
    if (nodes >= 20) {
      for (var k = 0; k < 10; k = k + 1) {
        var t = head;
        acc = (acc + t[0]) %% 9973;
        head = t[1];
        free(t);
      }
      nodes = nodes - 10;
    }
    if (i %% 100 == 99) { print_int(acc); print_char(' '); }
  }
  // drain the list and the ring
  while (head) {
    var t = head;
    acc = (acc + t[0]) %% 9973;
    head = t[1];
    free(t);
  }
  for (var s = 0; s < 16; s = s + 1) {
    if (ring[s]) { free(ring[s]); }
  }
  print_char('#');
  print_int(acc);
  return 0;
}
|}
    espresso_rounds

let espresso () = Dh_lang.Interp.program_of_source ~name:"espresso-sim" espresso_source

(* See the .mli: the fixed 64-byte title buffer copied with an unchecked
   strcpy is the Squid 2.3s5-style bug; the cache-node allocation right
   after it is what a sequential allocator places physically adjacent. *)
let squid_source =
  {|
// squid-sim: a toy caching web server with a heap buffer overflow.
fn main() {
  var cache = 0;
  var served = 0;
  var line = malloc(4096);
  while (1) {
    var got = gets(line);
    if (got == 0) { break; }
    if (strlen(line) == 0) { break; }
    // cache lookup: traverse the list, comparing stored URLs
    var n = cache;
    var hit = 0;
    while (n) {
      if (strcmp(n[0], line) == 0) { hit = 1; n[1] = n[1] + 1; break; }
      n = n[2];
    }
    if (hit) {
      print_str("HIT ");
      print_str(line);
      print_char(10);
    } else {
      // miss: build a response title and insert a cache entry.
      var title = malloc(64);
      var node = malloc(24);
      var url = malloc(strlen(line) + 1);
      strcpy(url, line);      // correctly sized: safe
      node[0] = url;
      node[1] = 1;
      node[2] = cache;
      cache = node;
      strcpy(title, line);    // BUG: fixed 64-byte buffer, no length check
      print_str("MISS ");
      print_str(node[0]);
      print_char(10);
      free(title);
    }
    served = served + 1;
  }
  print_str("served=");
  print_int(served);
  print_char(10);
  return 0;
}
|}

let squid () = Dh_lang.Interp.program_of_source ~name:"squid-sim" squid_source

(* lindsay-sim: the paper's hypercube simulator carries "an uninitialized
   read error that DieHard detects and terminates" (§7.2.3) — it was
   excluded from the 16-replica experiment for exactly that reason.  The
   bug here is the classic off-by-one initialization: the last node's
   state word is never written, and the final checksum folds it in. *)
let lindsay_source =
  {|
// lindsay-sim: hypercube message routing with an uninitialized read.
fn popcount(x) {
  var n = 0;
  while (x) { n = n + (x & 1); x = x >> 1; }
  return n;
}

fn main() {
  var dim = 4;
  var nodes = 1 << dim;          // 16 nodes
  var state = malloc(8 * nodes);
  // BUG: off-by-one -- node nodes-1 is never initialized
  for (var i = 0; i < nodes - 1; i = i + 1) { state[i] = i * i + 1; }
  // route a message from every node to its antipode, accumulating hops
  var hops = 0;
  for (var src = 0; src < nodes; src = src + 1) {
    var dst = nodes - 1 - src;
    hops = hops + popcount(src ^ dst);
  }
  print_str("hops=");
  print_int(hops);
  // fold every node's state into the checksum: reads state[nodes-1]
  var sum = 0;
  for (var i = 0; i < nodes; i = i + 1) { sum = sum + state[i]; }
  print_str(" checksum=");
  print_int(sum & 65535);
  print_char(10);
  // like most C programs, lindsay leaves exit-time cleanup to the OS
  return 0;
}
|}

let lindsay () = Dh_lang.Interp.program_of_source ~name:"lindsay-sim" lindsay_source

(* cfrac-sim: the continued-fraction-factorization benchmark's stand-in.
   Real cfrac is bug-free but extremely allocation-intensive (bignum
   limbs allocated and freed constantly); this Pollard-rho factoriser
   allocates a scratch limb buffer on every iteration the same way.
   Used by tests and the CLI as a third well-behaved application. *)
let cfrac_source =
  {|
// cfrac-sim: integer factorization with cfrac-style allocation churn.
fn gcd(a, b) {
  while (b) {
    var t = a % b;
    a = b;
    b = t;
  }
  return a;
}

// Pollard's rho with increment c; returns a nontrivial factor or 0.
fn rho(n, c) {
  var x = 2;
  var y = 2;
  var d = 1;
  var steps = 0;
  while (d == 1 && steps < 200000) {
    // a fresh "limb" per iteration, like cfrac's bignum temporaries
    var limb = malloc(24);
    x = (x * x + c) % n;
    y = (y * y + c) % n;
    y = (y * y + c) % n;
    limb[0] = x;
    limb[1] = y;
    var diff = x - y;
    if (diff < 0) { diff = -diff; }
    limb[2] = diff;
    d = gcd(limb[2], n);
    free(limb);
    steps = steps + 1;
  }
  if (d != n && d != 1) { return d; }
  return 0;
}

fn factor(n) {
  print_int(n);
  print_str(" = ");
  var c = 1;
  var d = 0;
  while (d == 0 && c < 20) {
    d = rho(n, c);
    c = c + 1;
  }
  if (d == 0) {
    print_str("prime\n");
  } else {
    var small = d;
    var big = n / d;
    if (big < small) {
      var t = small;
      small = big;
      big = t;
    }
    print_int(small);
    print_str(" * ");
    print_int(big);
    print_char(10);
  }
  return 0;
}

fn main() {
  factor(8051);          // 83 * 97
  factor(10403);         // 101 * 103
  factor(121094707);     // 10007 * 12101
  factor(999632189);     // 31567 * 31667
  return 0;
}
|}

let cfrac () = Dh_lang.Interp.program_of_source ~name:"cfrac-sim" cfrac_source

let squid_good_input ~requests =
  let buf = Buffer.create (requests * 32) in
  for i = 1 to requests do
    (* a few repeats so the HIT path is exercised too *)
    Buffer.add_string buf (Printf.sprintf "http://example.com/page%d\n" (i mod 7))
  done;
  Buffer.contents buf

let squid_attack_input ~requests =
  let buf = Buffer.create ((requests * 32) + 256) in
  for i = 1 to requests do
    if i = (requests / 2) + 1 then
      Buffer.add_string buf (String.make 200 'A' ^ "\n")  (* ill-formed *)
    else
      Buffer.add_string buf (Printf.sprintf "http://example.com/page%d\n" (i mod 7))
  done;
  Buffer.contents buf
