lib/workload/driver.ml: Array Dh_alloc Dh_mem Dh_rng Float Hashtbl List Option Profile
