lib/workload/apps.ml: Buffer Dh_lang Printf String
