lib/workload/apps.mli: Dh_alloc
