lib/workload/driver.mli: Dh_alloc Profile
