lib/workload/profile.mli:
