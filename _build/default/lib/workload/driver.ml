module Allocator = Dh_alloc.Allocator
module Mem = Dh_mem.Mem
module Mwc = Dh_rng.Mwc
module Dist = Dh_rng.Dist

type result = {
  checksum : int;
  ops_performed : int;
  failed_allocations : int;
  peak_live : int;
}

(* Cheap integer mixing used as the "application compute" between
   allocator operations. *)
let mix h =
  let h = h lxor (h lsr 16) in
  let h = h * 0x45D9F3B land max_int in
  h lxor (h lsr 13)

let run ?(seed = 1) (profile : Profile.t) (alloc : Allocator.t) =
  let rng = Mwc.create ~seed in
  let mem = alloc.Allocator.mem in
  let checksum = ref 0 in
  let failed = ref 0 in
  let live_count = ref 0 in
  let peak_live = ref 0 in
  (* objects due to be freed at a given op index *)
  let frees_at : (int, (int * int) list) Hashtbl.t = Hashtbl.create 256 in
  (* live table for GC roots *)
  let live : (int, int) Hashtbl.t = Hashtbl.create 256 in
  (match alloc.Allocator.register_roots with
  | Some register ->
    register (fun () -> Hashtbl.fold (fun addr _ acc -> addr :: acc) live [])
  | None -> ());
  let release addr size =
    ignore size;
    Hashtbl.remove live addr;
    decr live_count;
    alloc.Allocator.free addr
  in
  let touch op addr size =
    (* Write then read a prefix of the object, word-strided.  Values are
       derived from the op counter, never from addresses, so the
       checksum is identical under every allocator. *)
    let bytes =
      max 8 (int_of_float (float_of_int size *. profile.Profile.touch_fraction))
    in
    let words = min (bytes / 8) (size / 8) in
    for w = 0 to words - 1 do
      Mem.write64 mem (addr + (8 * w)) (mix ((op * 1021) + w))
    done;
    for w = 0 to words - 1 do
      checksum := (!checksum + (Mem.read64 mem (addr + (8 * w)) land 0xFFFF)) land max_int
    done
  in
  let pick_size () =
    if profile.Profile.large_rate > 0. && Mwc.float01 rng < profile.Profile.large_rate
    then 17_000 + Mwc.below rng 48_000
    else Dist.size_class_mix rng ~classes:profile.Profile.sizes
  in
  for op = 1 to profile.Profile.ops do
    (* 1. expire due objects *)
    (match Hashtbl.find_opt frees_at op with
    | Some objs ->
      Hashtbl.remove frees_at op;
      List.iter (fun (addr, size) -> release addr size) objs
    | None -> ());
    (* 2. application compute *)
    let acc = ref op in
    for _ = 1 to profile.Profile.compute_per_op do
      acc := mix !acc
    done;
    checksum := (!checksum + (!acc land 0xFF)) land max_int;
    (* 3. allocate and touch *)
    let size = pick_size () in
    (match alloc.Allocator.malloc size with
    | None -> incr failed
    | Some addr ->
      Hashtbl.replace live addr size;
      incr live_count;
      if !live_count > !peak_live then peak_live := !live_count;
      touch op addr size;
      (* 4. schedule the free *)
      let lifetime =
        1 + Dist.geometric rng ~p:(1. /. Float.max 1.5 profile.Profile.lifetime_mean)
      in
      let due = op + lifetime in
      if due <= profile.Profile.ops then begin
        let pending = Option.value ~default:[] (Hashtbl.find_opt frees_at due) in
        Hashtbl.replace frees_at due ((addr, size) :: pending)
      end
      else
        (* survives to the end; freed in the epilogue *)
        ())
  done;
  (* epilogue: free everything still live *)
  let remaining = Hashtbl.fold (fun addr size acc -> (addr, size) :: acc) live [] in
  List.iter (fun (addr, size) -> release addr size) remaining;
  {
    checksum = !checksum;
    ops_performed = profile.Profile.ops;
    failed_allocations = !failed;
    peak_live = !peak_live;
  }

let live_load_factor (profile : Profile.t) =
  let mean_size =
    let total_w = Array.fold_left (fun acc (_, w) -> acc +. w) 0. profile.Profile.sizes in
    Array.fold_left
      (fun acc (s, w) -> acc +. (float_of_int s *. w /. total_w))
      0. profile.Profile.sizes
  in
  mean_size *. profile.Profile.lifetime_mean

let heap_size_for profile =
  (* Each size class gets its own region; be generous so the busiest
     class stays under its 1/M threshold. *)
  let live = live_load_factor profile in
  let region = int_of_float (live *. 16.) in
  let region = max region (256 * 1024) in
  let region = (region + 4095) / 4096 * 4096 in
  Dh_alloc.Size_class.count * region
