(** The two "real applications" of §7.3, as MiniC programs.

    {2 espresso-sim}

    Stand-in for the espresso logic minimiser used in the fault-injection
    experiment (§7.3.1).  It is allocation-intensive with the structure
    that makes the paper's injected faults bite: it builds linked lists
    of heap cells, keeps a ring of recently-computed arrays, reads back
    through its pointers long after allocation, and frees on a schedule —
    so a prematurely-freed object is overwritten under a reuse-eager
    allocator (garbage read → wrong output, garbage {e pointer} →
    crash), while DieHard's randomized reclamation usually leaves it
    intact.  Output is a deterministic checksum trace.

    {2 squid-sim}

    Stand-in for Squid 2.3s5's heap overflow (§7.3, "Real Faults").  A
    toy web cache: reads one request URL per input line, stores a copy in
    a linked cache, and formats a fixed-size 64-byte title buffer with
    the unchecked [strcpy] that real Squid effectively performed.  A
    well-formed request (URL < 64 bytes) works everywhere.  An ill-formed
    (overlong) URL overflows the title buffer:

    - under the freelist baseline and under the conservative GC the
      buffer's physical neighbour is the just-allocated cache node, so
      the node's header and its URL pointer are smashed and the next
      dereference or allocator operation crashes;
    - under DieHard the node lives in a different size-class region
      entirely and the overflow lands on (mostly free) title slots: the
      cache survives and keeps answering. *)

val espresso_source : string
(** MiniC source. *)

val espresso : unit -> Dh_alloc.Program.t

val espresso_expected_rounds : int
(** Number of checksum lines espresso-sim prints (for output checks). *)

val squid_source : string
(** MiniC source. *)

val squid : unit -> Dh_alloc.Program.t

(** {2 lindsay-sim}

    Stand-in for the lindsay hypercube simulator, which "has an
    uninitialized read error that DieHard detects and terminates"
    (§7.2.3) — the replicated experiments had to exclude it.  The
    program's final checksum folds in one never-initialized word, so
    stand-alone runs complete quietly while the replicated runtime's
    random fill makes every replica answer differently and the voter
    terminates the run. *)

val lindsay_source : string

val lindsay : unit -> Dh_alloc.Program.t

(** {2 cfrac-sim}

    A bug-free, allocation-intensive application in the spirit of the
    cfrac factorisation benchmark: Pollard's rho allocating a scratch
    "limb" per iteration.  Useful as a correct control program — its
    output must be identical under every allocator and every seed. *)

val cfrac_source : string

val cfrac : unit -> Dh_alloc.Program.t

val squid_good_input : requests:int -> string
(** [requests] well-formed request lines. *)

val squid_attack_input : requests:int -> string
(** Well-formed traffic with one ill-formed (overlong-URL) request in the
    middle — the crash trigger. *)
