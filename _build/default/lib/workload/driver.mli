(** Trace driver: runs a {!Profile.t} against any allocator.

    The driver is the synthetic mutator: it allocates objects with the
    profile's size mix, touches them (writes then reads a fraction of
    their bytes through simulated memory), performs the profile's
    between-ops compute, and frees objects when their geometric lifetimes
    expire.  Everything is deterministic given the seed, and the
    computation produces a checksum so the work cannot be elided.

    The benchmark harness times this function under each allocator to
    regenerate Figure 5; the checksum equality across allocators doubles
    as a correctness check (a well-behaved workload must compute the same
    result no matter the memory manager). *)

type result = {
  checksum : int;  (** Allocator-independent for well-behaved profiles. *)
  ops_performed : int;  (** malloc calls actually issued. *)
  failed_allocations : int;  (** NULL returns (heap pressure). *)
  peak_live : int;  (** Peak simultaneously-live objects. *)
}

val run : ?seed:int -> Profile.t -> Dh_alloc.Allocator.t -> result

val live_load_factor : Profile.t -> float
(** Rough expected live bytes implied by the profile (mean size ×
    lifetime), used to size heaps so workloads do not exhaust them. *)

val heap_size_for : Profile.t -> int
(** A DieHard heap size comfortably serving this profile (per-class
    regions at least 4× the expected live load, M = 2). *)
