(** Synthetic stand-ins for the paper's benchmark programs (§7.1).

    We cannot run SPECint2000 binaries or the Berger–Zorn–McKinley
    allocation-intensive C programs on a simulated heap, so each
    benchmark is replaced by a parameterised allocation profile that
    reproduces the {e property the paper's experiment depends on}: its
    allocation intensity (the fraction of work that is memory-management
    operations), its object-size mix, and its object lifetimes.

    The paper's Figure 5 story is: DieHard costs little on programs that
    allocate rarely (most of SPECint) and noticeably on programs that
    allocate constantly (cfrac, espresso, …, and perlbmk/twolf within
    SPEC).  The profiles below encode exactly that axis:
    [compute_per_op] is the units of non-allocator compute between
    allocator operations — small for the allocation-intensive suite,
    large for most of SPEC.  Size mixes are chosen per program (e.g.
    twolf uses "a wide range of object sizes", §7.2.1).

    Parameters are invented but documented; absolute runtimes are
    meaningless, only the {e relative shape} across allocators is
    compared with the paper (see EXPERIMENTS.md). *)

type suite = Alloc_intensive | Spec

type t = {
  name : string;
  suite : suite;
  ops : int;  (** malloc/free pairs to perform (scaled down from reality). *)
  sizes : (int * float) array;  (** (bytes, weight) object-size mix. *)
  lifetime_mean : float;
      (** Mean object lifetime in {e allocations} (geometric). *)
  touch_fraction : float;
      (** Fraction of each object's bytes written+read after allocation
          (locality pressure: DieHard's random placement spreads these
          touches over many pages). *)
  compute_per_op : int;
      (** Units of pure compute between allocator operations — the
          allocation-intensity dial. *)
  large_rate : float;  (** Probability an allocation is > 16 KB. *)
}

val alloc_intensive : t list
(** cfrac, espresso, lindsay, p2c, roboop. *)

val spec : t list
(** The twelve SPECint2000 programs of Figure 5(a). *)

val all : t list

val find : string -> t option

val scale : t -> factor:float -> t
(** Scale [ops] (for quick test runs vs. full bench runs). *)
