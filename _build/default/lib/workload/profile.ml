type suite = Alloc_intensive | Spec

type t = {
  name : string;
  suite : suite;
  ops : int;
  sizes : (int * float) array;
  lifetime_mean : float;
  touch_fraction : float;
  compute_per_op : int;
  large_rate : float;
}

(* Object-size mixes.  [small] = mostly sub-cache-line cells (cons cells,
   small structs); [mixed] = typical C program mix; [wide] = the twolf
   pattern ("a wide range of object sizes" spread across many size-class
   partitions, §7.2.1); [buffers] = larger I/O-ish buffers. *)
let small = [| (8, 0.3); (16, 0.4); (32, 0.2); (64, 0.1) |]
let mixed = [| (16, 0.25); (32, 0.25); (64, 0.2); (128, 0.15); (256, 0.1); (1024, 0.05) |]

let wide =
  [| (8, 0.12); (16, 0.12); (24, 0.1); (48, 0.1); (96, 0.1); (192, 0.1);
     (384, 0.1); (768, 0.08); (1536, 0.08); (3072, 0.05); (6144, 0.03);
     (12288, 0.02) |]

let buffers = [| (256, 0.3); (1024, 0.3); (4096, 0.3); (16384, 0.1) |]

let ai name ops sizes lifetime_mean =
  {
    name;
    suite = Alloc_intensive;
    ops;
    sizes;
    lifetime_mean;
    touch_fraction = 1.0;
    compute_per_op = 4;  (* barely any compute between allocator calls *)
    large_rate = 0.;
  }

let spec_p name ops sizes lifetime_mean ~compute ~touch ~large =
  {
    name;
    suite = Spec;
    ops;
    sizes;
    lifetime_mean;
    touch_fraction = touch;
    compute_per_op = compute;
    large_rate = large;
  }

(* The allocation-intensive suite "performs between 100,000 and 1,700,000
   memory operations per second" — i.e. allocator calls dominate.  Scaled
   op counts keep bench runs in seconds. *)
let alloc_intensive =
  [
    (* cfrac: continued-fraction factorisation; tiny bignum limbs,
       short-lived. *)
    ai "cfrac" 60_000 small 12.;
    (* espresso: boolean minimisation; cube sets, small-to-medium arrays,
       phase-structured lifetimes. *)
    ai "espresso" 60_000 mixed 40.;
    (* lindsay: hypercube simulator (the one with the uninitialized-read
       bug the replicated mode catches). *)
    ai "lindsay" 50_000 small 25.;
    (* p2c: Pascal-to-C translator; AST nodes, strings. *)
    ai "p2c" 50_000 mixed 60.;
    (* roboop: robotics library; many tiny matrix temporaries, freed
       almost immediately. *)
    ai "roboop" 80_000 small 4.;
  ]

let spec =
  [
    (* gzip: big I/O buffers allocated rarely. *)
    spec_p "164.gzip" 2_000 buffers 200. ~compute:2_000 ~touch:0.5 ~large:0.005;
    (* vpr: placement/routing graphs. *)
    spec_p "175.vpr" 6_000 mixed 300. ~compute:700 ~touch:0.6 ~large:0.;
    (* gcc: front-end allocation bursts, obstack-ish lifetimes. *)
    spec_p "176.gcc" 15_000 mixed 150. ~compute:250 ~touch:0.5 ~large:0.001;
    (* mcf: one huge network allocated up front, then pure pointer
       chasing. *)
    spec_p "181.mcf" 1_200 buffers 800. ~compute:2_500 ~touch:0.8 ~large:0.01;
    (* crafty: chess; almost no dynamic allocation. *)
    spec_p "186.crafty" 800 small 400. ~compute:4_000 ~touch:0.4 ~large:0.;
    (* parser: dictionary cells, its own sub-allocator behaviour. *)
    spec_p "197.parser" 12_000 small 80. ~compute:300 ~touch:0.8 ~large:0.;
    (* eon: C++ ray tracer; many small objects. *)
    spec_p "252.eon" 9_000 small 60. ~compute:400 ~touch:0.7 ~large:0.;
    (* perlbmk: "allocation-intensive, spending around 12.5% of its
       execution doing memory operations" — the SPEC outlier. *)
    spec_p "253.perlbmk" 30_000 mixed 50. ~compute:60 ~touch:0.9 ~large:0.;
    (* gap: group theory; workspace arena plus small cells. *)
    spec_p "254.gap" 5_000 mixed 250. ~compute:900 ~touch:0.6 ~large:0.002;
    (* vortex: OO database; medium records with long lifetimes. *)
    spec_p "255.vortex" 10_000 mixed 400. ~compute:350 ~touch:0.7 ~large:0.;
    (* bzip2: a few large block buffers. *)
    spec_p "256.bzip2" 1_000 buffers 300. ~compute:3_000 ~touch:0.6 ~large:0.01;
    (* twolf: the TLB-miss case — wide size range over many partitions,
       heavy touching of spread-out objects. *)
    spec_p "300.twolf" 25_000 wide 120. ~compute:80 ~touch:1.0 ~large:0.;
  ]

let all = alloc_intensive @ spec

let find name = List.find_opt (fun p -> p.name = name) all

let scale p ~factor =
  { p with ops = max 1 (int_of_float (float_of_int p.ops *. factor)) }
