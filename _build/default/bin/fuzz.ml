(* Differential fuzzing of the allocator zoo.

   Generates random (but well-behaved) allocation workloads — malloc,
   free, realloc, full-object writes and read-back checksums — and runs
   each against every allocator in the repository.  A correct workload
   must produce the SAME checksum everywhere and leave every allocator's
   accounting consistent; any divergence or simulator fault is a bug in
   an allocator, not in the workload.

     dune exec bin/fuzz.exe -- --rounds 200 --ops 400 --seed 1

   This is the repository's standing differential test: the per-module
   suites check behaviours, the fuzzer checks that six independent
   memory managers agree on what a well-behaved program computes. *)

open Cmdliner

module Mem = Dh_mem.Mem
module Allocator = Dh_alloc.Allocator
module Mwc = Dh_rng.Mwc

type op =
  | Alloc of int  (* size *)
  | Free of int  (* index into live list *)
  | Realloc of int * int  (* index, new size *)
  | Touch of int  (* index: write then checksum the object *)

(* A workload is deterministic given its seed: sizes and the op mix are
   drawn first so that every allocator replays the same logical ops. *)
let generate ~rng ~ops =
  List.init ops (fun _ ->
      match Mwc.below rng 10 with
      | 0 | 1 | 2 | 3 -> Alloc (1 + Mwc.below rng 20_000)
      | 4 | 5 -> Free (Mwc.below rng 1_000_000)
      | 6 -> Realloc (Mwc.below rng 1_000_000, 1 + Mwc.below rng 20_000)
      | _ -> Touch (Mwc.below rng 1_000_000))

let mix h =
  let h = h lxor (h lsr 16) in
  let h = h * 0x45D9F3B land max_int in
  h lxor (h lsr 13)

(* Replay a workload against one allocator; returns a checksum. *)
let replay ops alloc =
  let mem = alloc.Allocator.mem in
  let live = ref [||] in  (* (address, requested size) *)
  let checksum = ref 0 in
  let opno = ref 0 in
  let add1 addr sz = live := Array.append !live [| (addr, sz) |] in
  let remove i =
    let n = Array.length !live in
    let next = Array.make (n - 1) (0, 0) in
    Array.blit !live 0 next 0 i;
    Array.blit !live (i + 1) next i (n - 1 - i);
    live := next
  in
  let touch addr sz =
    let words = max 1 (sz / 8) in
    for w = 0 to words - 1 do
      if (w + 1) * 8 <= sz then Mem.write64 mem (addr + (8 * w)) (mix ((!opno * 31) + w))
    done;
    for w = 0 to words - 1 do
      if (w + 1) * 8 <= sz then
        checksum := (!checksum + (Mem.read64 mem (addr + (8 * w)) land 0xFFFF)) land max_int
    done
  in
  List.iter
    (fun op ->
      incr opno;
      match op with
      | Alloc sz -> (
        match alloc.Allocator.malloc sz with
        | Some addr ->
          add1 addr sz;
          touch addr sz
        | None -> checksum := (!checksum + 7) land max_int)
      | Free i ->
        if Array.length !live > 0 then begin
          let i = i mod Array.length !live in
          let addr, _ = !live.(i) in
          alloc.Allocator.free addr;
          remove i
        end
      | Realloc (i, sz) ->
        if Array.length !live > 0 then begin
          let i = i mod Array.length !live in
          let addr, _ = !live.(i) in
          match Allocator.realloc alloc addr sz with
          | Some fresh ->
            remove i;
            add1 fresh sz;
            touch fresh sz
          | None ->
            (* old object was freed only in the sz=0 case *)
            if sz = 0 then remove i
        end
      | Touch i ->
        if Array.length !live > 0 then begin
          let i = i mod Array.length !live in
          let addr, sz = !live.(i) in
          touch addr sz
        end)
    ops;
  (* epilogue: free everything, then the allocator must report zero live *)
  Array.iter (fun (addr, _) -> alloc.Allocator.free addr) !live;
  (!checksum, alloc.Allocator.stats.Dh_alloc.Stats.live_objects)

let allocators ~seed =
  [
    ("freelist-lea", fun () -> Dh_alloc.Freelist.allocator (Dh_alloc.Freelist.create (Mem.create ())));
    ( "freelist-win",
      fun () ->
        Dh_alloc.Freelist.allocator
          (Dh_alloc.Freelist.create ~variant:Dh_alloc.Freelist.Windows (Mem.create ())) );
    ("gc-bdw", fun () -> Dh_alloc.Gc.allocator (Dh_alloc.Gc.create (Mem.create ())));
    ( "diehard",
      fun () ->
        Diehard.Heap.allocator
          (Diehard.Heap.create
             ~config:(Diehard.Config.v ~heap_size:(48 lsl 20) ~seed ())
             (Mem.create ())) );
    ( "diehard-adaptive",
      fun () -> Diehard.Adaptive.allocator (Diehard.Adaptive.create ~seed (Mem.create ())) );
    ( "diehard-hybrid",
      fun () ->
        Diehard.Hybrid.allocator
          (Diehard.Hybrid.create
             ~config:(Diehard.Config.v ~heap_size:(48 lsl 20) ~seed ())
             (Mem.create ())) );
  ]

let run_fuzz rounds ops seed0 verbose =
  let failures = ref 0 in
  for round = 1 to rounds do
    let seed = seed0 + round in
    let workload = generate ~rng:(Mwc.create ~seed) ~ops in
    let results =
      List.map
        (fun (name, make) ->
          match replay workload (make ()) with
          | result -> (name, Ok result)
          | exception e -> (name, Error (Printexc.to_string e)))
        (allocators ~seed)
    in
    let checksums =
      List.filter_map
        (fun (name, r) ->
          match r with Ok (sum, _) -> Some (name, sum) | Error _ -> None)
        results
    in
    let distinct = List.sort_uniq compare (List.map snd checksums) in
    let leaks =
      List.filter_map
        (fun (name, r) ->
          match r with
          (* the collector reclaims at collection time, not at free:
             its live count legitimately lags *)
          | Ok (_, live) when live <> 0 && name <> "gc-bdw" -> Some (name, live)
          | Ok _ | Error _ -> None)
        results
    in
    let errors =
      List.filter_map
        (fun (name, r) -> match r with Error e -> Some (name, e) | Ok _ -> None)
        results
    in
    if List.length distinct > 1 || leaks <> [] || errors <> [] then begin
      incr failures;
      Printf.printf "round %d (seed %d): FAIL\n" round seed;
      List.iter (fun (name, e) -> Printf.printf "  %-18s exception: %s\n" name e) errors;
      if List.length distinct > 1 then
        List.iter (fun (name, sum) -> Printf.printf "  %-18s checksum %d\n" name sum) checksums;
      List.iter (fun (name, live) -> Printf.printf "  %-18s leaked %d objects\n" name live) leaks
    end
    else if verbose then
      Printf.printf "round %d (seed %d): ok (checksum %d)\n" round seed
        (match distinct with [ d ] -> d | _ -> 0)
  done;
  if !failures = 0 then begin
    Printf.printf "fuzz: %d rounds x %d ops across %d allocators: all agree\n" rounds ops
      (List.length (allocators ~seed:0));
    0
  end
  else begin
    Printf.printf "fuzz: %d/%d rounds FAILED\n" !failures rounds;
    1
  end

let cmd =
  let rounds =
    Arg.(value & opt int 50 & info [ "rounds" ] ~docv:"N" ~doc:"Workloads to generate.")
  in
  let ops =
    Arg.(value & opt int 300 & info [ "ops" ] ~docv:"N" ~doc:"Operations per workload.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print passing rounds.") in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Differential fuzzing across all allocators")
    Term.(const (fun r o s v -> Stdlib.exit (run_fuzz r o s v)) $ rounds $ ops $ seed $ verbose)

let () = exit (Cmd.eval' cmd)
